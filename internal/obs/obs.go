// Package obs is the observability plane shared by the serving layer,
// the cluster coordinator and the runner nodes: one metrics registry,
// lightweight structured tracing, and a bounded flight recorder of
// recent span events.
//
// # Registry
//
// Registry holds counters, gauges and histograms — optionally labeled —
// and renders them all as canonical Prometheus text exposition
// (version 0.0.4, with # HELP and # TYPE lines, deterministically
// ordered). Snapshot-style statistics owned elsewhere (store tiers,
// cluster dispatch counters, queue depths) fold in through func-backed
// families read at scrape time, so there is exactly one rendering path
// for every metric the process exports. Registering the same name twice
// with a matching type and label set returns the existing family, which
// lets independent components (the HTTP layer, the coordinator) share
// one family — the per-phase duration histogram, for example — without
// coordinating registration order.
//
// # Tracing
//
// Tracer mints trace and span IDs per request or job; spans form a
// tree (Child), carry attributes, record point events, and measure
// their own duration on End. Every span transition lands in the
// tracer's FlightRecorder — a fixed-size ring of recent events dumped
// over /debug/events or on SIGQUIT — so "where did this explore spend
// its time" is answerable after the fact without a profiler. Spans
// propagate through context (ContextWithSpan/SpanFrom) within a
// process and through the cluster wire schema (api.Trace) across
// processes; a runner executes a remote shard under a span parented to
// the coordinator's shard span and echoes its events back, so a
// distributed batch yields one coherent timeline.
//
// # Passivity
//
// Observability is passive by construction: simulation, sweep, DSE and
// cluster outputs are byte-identical with tracing on or off, and every
// handle (Counter, Gauge, Histogram, Span, Tracer, Registry,
// FlightRecorder) is safe to use through a nil pointer, where all
// operations are allocation-free no-ops — a disabled plane costs
// nothing on the hot path. These invariants are pinned by tests here
// and in internal/serve.
package obs

// Options configures an Obs bundle.
type Options struct {
	// FlightEvents is the flight recorder's ring capacity in events;
	// <= 0 means 4096.
	FlightEvents int
}

// Obs bundles the three observability components one process shares: a
// metrics registry, a flight recorder, and a tracer writing into it.
// The zero Obs (and a nil *Obs) is fully disabled: every accessor
// returns nil and all downstream operations are no-ops.
type Obs struct {
	reg    *Registry
	flight *FlightRecorder
	tracer *Tracer
}

// New returns an enabled observability bundle.
func New(opts Options) *Obs {
	f := NewFlightRecorder(opts.FlightEvents)
	return &Obs{
		reg:    NewRegistry(),
		flight: f,
		tracer: NewTracer(f),
	}
}

// Nop returns a non-nil but fully disabled bundle: metrics registration
// yields nil handles, spans are nil, and nothing is recorded.
func Nop() *Obs { return &Obs{} }

// Registry returns the metrics registry, nil when disabled.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the tracer, nil when disabled.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Flight returns the flight recorder, nil when disabled.
func (o *Obs) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight
}

// PhaseHist returns the process-wide per-phase duration histogram
// family (microseconds, labeled by phase). Defined here so every
// component that times a phase — request canonicalization, store
// lookup, shard dispatch, simulation, frontier folds — lands in the
// same family without duplicating the name or help text.
func PhaseHist(r *Registry) *HistogramVec {
	return r.HistogramVec("hybridmem_phase_duration_us",
		"Wall-clock duration of internal processing phases, in microseconds.", "phase")
}
