package chameleon

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func init() {
	design.Register(design.Info{
		Name:    "CHA",
		Doc:     "Chameleon cache/migration hybrid",
		Kind:    design.KindMain,
		Order:   2,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			cfg := Default(sys.NMBytes, sys.FMBytes, sys.Hybrid2CacheBytes(), design.RemapEntries(sys), sys.Seed)
			return New(cfg, nm, fm), nil
		},
	})
	design.Register(design.Info{
		Name:    "POM",
		Doc:     "Page Overlay Migration (Chameleon without the cache slice, §2.2)",
		Kind:    design.KindExtra,
		Order:   2,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(PoM(sys.NMBytes, sys.FMBytes, design.RemapEntries(sys), sys.Seed), nm, fm), nil
		},
	})
}
