// Package dramcache implements the DRAM-cache family of the paper's
// comparison: the near memory used entirely as a cache of far memory.
// One parameterized implementation covers three designs:
//
//   - IDEAL: no tag-lookup overhead at any line size (Figures 1, 2)
//   - TAGLESS (Lee et al., ISCA'15): 4 KB pages tracked through the
//     TLB/page tables, hence no tag overhead, but full-page fills
//   - DFC (Decoupled Fused Cache, TACO'19): tags live in DRAM but are
//     fused with the on-chip LLC tags; modelled as a small on-chip lookup
//     latency on every access plus one NM metadata access per miss
//
// Lines are fetched whole from FM on a miss (the over-fetch behaviour
// Figure 1 quantifies); per-64B-chunk use masks feed the wasted-data
// accounting.
package dramcache

import (
	"math/bits"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// Config selects a member of the DRAM-cache family.
type Config struct {
	Name      string
	NMBytes   uint64 // cache capacity = all of near memory
	LineBytes int    // DRAM-cache line (64 B .. 4 KB)
	Assoc     int
	// TagLatency is an on-chip lookup latency added to every access
	// (DFC's fused tag structures). Zero for IDEAL/TAGLESS.
	TagLatency memtypes.Tick
	// MetaPerMiss charges one 64 B NM metadata read on the critical path
	// of every miss plus one background metadata write (DFC's in-DRAM
	// tag array). False for IDEAL/TAGLESS.
	MetaPerMiss bool
	// TADBytes, when non-zero, models Alloy-style tag-and-data fusion:
	// every probe (hit or miss) is one NM burst of this size — the tag
	// rides along with the data, so there is no separate lookup, but a
	// miss still pays the probe before going to FM.
	TADBytes int
}

// Ideal returns the ideal-cache configuration at a line size (Fig. 1/2).
func Ideal(nmBytes uint64, lineBytes int) Config {
	return Config{Name: "IDEAL", NMBytes: nmBytes, LineBytes: lineBytes, Assoc: 16}
}

// Tagless returns the Tagless DRAM cache configuration: 4 KB pages, no
// tag overhead (the paper optimistically models no OS overhead either).
func Tagless(nmBytes uint64) Config {
	return Config{Name: "TAGLESS", NMBytes: nmBytes, LineBytes: 4096, Assoc: 32}
}

// DFC returns the Decoupled Fused Cache configuration. The paper found
// its best performance at 1 KB lines; Fig. 2 sweeps other sizes.
func DFC(nmBytes uint64, lineBytes int) Config {
	return Config{Name: "DFC", NMBytes: nmBytes, LineBytes: lineBytes, Assoc: 16,
		TagLatency: 4, MetaPerMiss: true}
}

// Alloy returns the Alloy cache configuration (Qureshi & Loh, MICRO'12,
// §2.1 of the paper): direct-mapped, 64 B lines, tag collocated with the
// data so each probe is a single burst (TAD) — the practical design on
// the small-line end of the DRAM-cache spectrum.
func Alloy(nmBytes uint64) Config {
	return Config{Name: "ALLOY", NMBytes: nmBytes, LineBytes: 64, Assoc: 1, TADBytes: 72}
}

// Entry state is struct-of-arrays: one tag word and one use mask per
// way, plus an LRU stamp array left out for direct-mapped configs. The
// valid/dirty/listed flags live in spare high bits of the tag word —
// physical addresses fit well below 2^58 line-granularity tags — so a
// probe walks a compact tag vector and construction zeroes roughly half
// the memory of the old 32-byte array-of-structs entries. That zeroing
// is a first-order cost: a 64 B-line cache over scaled NM has millions
// of entries and sweeps construct one per (design, workload) run.
const (
	tagValid  = 1 << 63
	tagDirty  = 1 << 62
	tagListed = 1 << 61
	tagMask   = tagListed - 1
)

// Cache is a DRAM cache over the NM device backed by the FM device.
type Cache struct {
	cfg    Config
	nm, fm *memsys.Device

	tags []uint64 // sets*assoc, indexed set*assoc+way; flags in high bits
	lrus []uint64 // nil when assoc == 1: no replacement choice to order
	used []uint64 // per-64B chunk touch bits (lines up to 4 KB)

	// touched lists every slot that ever held a line, in first-fill
	// order, so Finish credits resident use masks without scanning the
	// whole (potentially tens of millions of entries) array.
	touched []int32

	sets     int
	assoc    int
	shift    uint
	setBits  uint
	setMask  uint64
	lineMask uint64
	chunks   int // 64 B chunks per line
	clock    uint64
	stats    memtypes.MemStats
	metaBase memtypes.Addr // NM address region used for DFC metadata
}

// New builds the cache. NMBytes must be a multiple of Assoc*LineBytes
// with a power-of-two set count.
func New(cfg Config, nm, fm *memsys.Device) *Cache {
	sets := int(cfg.NMBytes) / (cfg.Assoc * cfg.LineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("dramcache: set count must be a positive power of two")
	}
	shift := uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	if 1<<shift != cfg.LineBytes || cfg.LineBytes < 64 {
		panic("dramcache: line size must be a power of two >= 64")
	}
	c := &Cache{
		cfg:      cfg,
		nm:       nm,
		fm:       fm,
		tags:     make([]uint64, sets*cfg.Assoc),
		used:     make([]uint64, sets*cfg.Assoc),
		touched:  make([]int32, 0, 1024),
		sets:     sets,
		assoc:    cfg.Assoc,
		shift:    shift,
		setBits:  uint(bits.TrailingZeros(uint(sets))),
		setMask:  uint64(sets - 1),
		lineMask: uint64(cfg.LineBytes - 1),
		chunks:   cfg.LineBytes / 64,
		metaBase: memtypes.Addr(cfg.NMBytes),
	}
	if cfg.Assoc > 1 {
		c.lrus = make([]uint64, sets*cfg.Assoc)
	}
	return c
}

// Name implements MemorySystem.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats implements MemorySystem.
func (c *Cache) Stats() *memtypes.MemStats { return &c.stats }

// nmAddr maps an entry slot to its NM data location.
func (c *Cache) nmAddr(set, way int) memtypes.Addr {
	return memtypes.Addr((set*c.assoc + way) * c.cfg.LineBytes)
}

// Access implements MemorySystem.
func (c *Cache) Access(now memtypes.Tick, addr memtypes.Addr, write bool) memtypes.Tick {
	c.stats.Requests++
	c.clock++
	now += c.cfg.TagLatency

	blk := uint64(addr) >> c.shift
	set := int(blk & c.setMask)
	tag := blk >> c.setBits
	chunk := uint(uint64(addr) & c.lineMask >> 6)
	base := set * c.assoc

	for i := 0; i < c.assoc; i++ {
		w := c.tags[base+i]
		if w&tagValid != 0 && w&tagMask == tag {
			if c.assoc > 1 {
				c.lrus[base+i] = c.clock
			}
			c.used[base+i] |= 1 << chunk
			if write {
				c.tags[base+i] = w | tagDirty
			}
			c.stats.ServedNM++
			sz := 64
			if c.cfg.TADBytes > 0 {
				sz = c.cfg.TADBytes // tag rides with the data
			}
			done := c.nm.Access(now, c.nmAddr(set, i)+memtypes.Addr(chunk*64), sz, write)
			if write {
				c.stats.NMWriteBytes += uint64(sz)
			} else {
				c.stats.NMReadBytes += uint64(sz)
			}
			return done
		}
	}

	// Miss: pick the victim the way the old array-of-structs scan did —
	// the first invalid way when one exists, else the lowest-indexed way
	// with the minimum LRU stamp — then evict it and fetch the whole line
	// from FM.
	c.stats.ServedFM++
	victim := 0
	if c.assoc > 1 {
		victim = -1
		minI := 0
		for i := 0; i < c.assoc; i++ {
			if c.tags[base+i]&tagValid == 0 {
				victim = i
				break
			}
			if c.lrus[base+i] < c.lrus[base+minI] {
				minI = i
			}
		}
		if victim < 0 {
			victim = minI
		}
	}
	slot := c.nmAddr(set, victim)
	if c.tags[base+victim]&tagValid != 0 {
		c.evict(now, set, victim)
	}

	if c.cfg.TADBytes > 0 {
		// Alloy probe: the miss is only discovered after reading the TAD.
		now = c.nm.Access(now, slot, c.cfg.TADBytes, false)
		c.stats.NMReadBytes += uint64(c.cfg.TADBytes)
		c.stats.MetaNMBytes += uint64(c.cfg.TADBytes)
	}
	if c.cfg.MetaPerMiss {
		// In-DRAM tag read on the critical path + background tag update.
		now = c.nm.Access(now, c.metaBase+memtypes.Addr(set*64), 64, false)
		c.nm.AccessBG(now, c.metaBase+memtypes.Addr(set*64), 64, true)
		c.stats.NMReadBytes += 64
		c.stats.NMWriteBytes += 64
		c.stats.MetaNMBytes += 128
	}

	// Critical-word-first: the demanded 64 B chunk arrives first; the
	// rest of the line streams behind it, occupying FM bandwidth but not
	// the miss critical path.
	lineBase := memtypes.Addr(blk << c.shift)
	fetchDone, fullDone := c.fm.AccessCriticalFirst(now, lineBase, c.cfg.LineBytes, 64)
	c.stats.FMReadBytes += uint64(c.cfg.LineBytes)
	c.stats.FetchedBytes += uint64(c.cfg.LineBytes)
	// Fill into NM in the background.
	c.nm.AccessBG(fullDone, slot, c.cfg.LineBytes, true)
	c.stats.NMWriteBytes += uint64(c.cfg.LineBytes)

	newTag := tag | tagValid | tagListed
	if write {
		newTag |= tagDirty
	}
	if c.tags[base+victim]&tagListed == 0 {
		c.touched = append(c.touched, int32(base+victim))
	}
	c.tags[base+victim] = newTag
	c.used[base+victim] = 1 << chunk
	if c.assoc > 1 {
		c.lrus[base+victim] = c.clock
	}
	return fetchDone
}

// evict writes a dirty victim back to FM and accounts its used chunks.
func (c *Cache) evict(now memtypes.Tick, set, way int) {
	idx := set*c.assoc + way
	w := c.tags[idx]
	c.stats.UsedBytes += uint64(bits.OnesCount64(c.used[idx])) * 64
	c.stats.Evictions++
	if w&tagDirty != 0 {
		rd := c.nm.AccessBG(now, c.nmAddr(set, way), c.cfg.LineBytes, false)
		victimAddr := memtypes.Addr(((w&tagMask)<<c.setBits | uint64(set)) << c.shift)
		c.fm.AccessBG(rd, victimAddr, c.cfg.LineBytes, true)
		c.stats.NMReadBytes += uint64(c.cfg.LineBytes)
		c.stats.FMWriteBytes += uint64(c.cfg.LineBytes)
	}
	c.tags[idx] = w &^ tagValid
}

// Finish credits the use masks of still-resident lines so the wasted-data
// fraction is not overstated at simulation end. Only slots that ever held
// a line are visited; the accumulation is commutative, so the first-fill
// visit order matches the old full scan's result exactly.
func (c *Cache) Finish(memtypes.Tick) {
	for _, idx := range c.touched {
		if c.tags[idx]&tagValid != 0 {
			c.stats.UsedBytes += uint64(bits.OnesCount64(c.used[idx])) * 64
			c.used[idx] = 0
		}
	}
}
