// Package memtypes holds the shared primitive types of the memory-system
// simulator: addresses, time, the MemorySystem interface implemented by
// every evaluated design, and the traffic statistics they report.
package memtypes

// Addr is a byte address in the processor physical address space.
type Addr uint64

// Tick is a point in time measured in CPU cycles (3.2 GHz in the paper's
// configuration, Table 1).
type Tick uint64

// CPULineBytes is the granularity of processor memory requests: one
// last-level-cache line.
const CPULineBytes = 64

// Rec is one trace record as the simulation loop consumes it: Gap
// non-memory instructions followed by one 64 B access at Addr. Batch
// record transfers (sim.BatchSource) move slices of Rec so the decoder
// or generator amortizes its per-record work across a whole batch.
type Rec struct {
	Gap   uint64
	Addr  Addr
	Write bool
}

// MemorySystem is the interface every memory organization under study
// implements: the flat baseline, the DRAM caches, the migration schemes,
// and Hybrid2 itself. The simulation driver issues one call per LLC miss
// or dirty write-back.
type MemorySystem interface {
	// Name identifies the design in experiment output.
	Name() string

	// Access serves one 64-byte request issued at time now and returns
	// the time at which the requested data is available (for reads) or
	// accepted (for writes). Implementations account all induced traffic
	// (fills, write-backs, migrations, metadata) internally.
	Access(now Tick, addr Addr, write bool) Tick

	// Finish flushes design state that would otherwise stay buffered
	// (e.g. pending interval work) at simulation end time now.
	Finish(now Tick)

	// Stats returns the design's traffic counters. The returned pointer
	// stays valid and live for the lifetime of the design.
	Stats() *MemStats
}

// MemStats aggregates the traffic a MemorySystem induced on the two
// memory devices, split the way the paper's Figures 15-18 need it.
type MemStats struct {
	Requests     uint64 // processor requests seen
	ServedNM     uint64 // processor requests whose data came from NM
	ServedFM     uint64 // processor requests whose data came from FM
	NMReadBytes  uint64 // all NM reads (demand + fills + metadata)
	NMWriteBytes uint64
	FMReadBytes  uint64
	FMWriteBytes uint64
	MetaNMBytes  uint64 // subset of NM traffic due to remap/tag metadata
	Migrations   uint64 // sectors/segments/pages moved into NM
	Evictions    uint64 // cache or NM evictions back to FM
	// Wasted-fetch accounting for Figure 1: bytes fetched into the NM
	// cache and bytes of those actually touched before eviction.
	FetchedBytes uint64
	UsedBytes    uint64
}

// NMTraffic returns total bytes moved on the near-memory interface.
func (s *MemStats) NMTraffic() uint64 { return s.NMReadBytes + s.NMWriteBytes }

// FMTraffic returns total bytes moved on the far-memory interface.
func (s *MemStats) FMTraffic() uint64 { return s.FMReadBytes + s.FMWriteBytes }

// WastedFrac returns the fraction of fetched bytes never used before
// eviction (Figure 1). Returns 0 when nothing was fetched, and clamps
// to 0 when UsedBytes exceeds FetchedBytes — a design that counts
// writes into resident lines as "used" can legitimately report more
// used than fetched bytes, and the unsigned subtraction would
// otherwise wrap to a near-1 fraction.
func (s *MemStats) WastedFrac() float64 {
	if s.FetchedBytes == 0 || s.UsedBytes > s.FetchedBytes {
		return 0
	}
	return float64(s.FetchedBytes-s.UsedBytes) / float64(s.FetchedBytes)
}
