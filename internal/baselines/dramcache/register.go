package dramcache

import (
	"hybridmem/internal/config"
	"hybridmem/internal/design"
	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

// lineParam is the shared cache-line-size grammar of the parameterized
// DRAM caches. The upper bound is a parse-time sanity cap; the scaled NM
// capacity still constrains the real maximum at build time.
func lineParam(doc string, optional bool, def int) design.Param {
	return design.Param{
		Name: "lineB", Doc: doc,
		Min: 64, Max: 1 << 16, Pow2: true,
		Optional: optional, Default: def,
	}
}

func init() {
	design.Register(design.Info{
		Name:    "TAGLESS",
		Doc:     "tagless DRAM cache (4 KB pages)",
		Kind:    design.KindMain,
		Order:   4,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Tagless(sys.NMBytes), nm, fm), nil
		},
	})
	design.Register(design.Info{
		Name:    "ALLOY",
		Doc:     "direct-mapped TAD cache (64 B lines)",
		Kind:    design.KindExtra,
		Order:   4,
		NeedsNM: true,
		Build: func(_ design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Alloy(sys.NMBytes), nm, fm), nil
		},
	})
	design.Register(design.Info{
		Name:    "DFC",
		Doc:     "decoupled fused cache (default 1 KB lines)",
		Kind:    design.KindMain,
		Order:   5,
		NeedsNM: true,
		Params:  []design.Param{lineParam("cache-line size in bytes", true, 1024)},
		Example: "DFC-1024",
		Build: func(spec design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(DFC(sys.NMBytes, spec.Int("lineB")), nm, fm), nil
		},
	})
	design.Register(design.Info{
		Name:    "IDEAL",
		Doc:     "ideal (no tag/latency overhead) cache at a line size",
		Kind:    design.KindVariant,
		Order:   1,
		NeedsNM: true,
		Params:  []design.Param{lineParam("cache-line size in bytes", false, 0)},
		Example: "IDEAL-256",
		Build: func(spec design.Spec, sys config.System, nm, fm *memsys.Device) (memtypes.MemorySystem, error) {
			return New(Ideal(sys.NMBytes, spec.Int("lineB")), nm, fm), nil
		},
	})
}
