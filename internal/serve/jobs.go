package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sync"
	"sync/atomic"
	"time"

	"hybridmem/internal/api"
	"hybridmem/internal/atomicfile"
)

// Job lifecycle: submitted requests enter a bounded queue and are
// executed by a fixed worker pool. Job IDs are the request's content
// fingerprint, so submitting identical work twice yields the same job —
// the queue deduplicates exactly like the result cache deduplicates
// completed work.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

var (
	errDraining  = errors.New("server is draining; not accepting new jobs")
	errQueueFull = errors.New("job queue is full")
)

// job is one asynchronous unit of work (a sweep or an exploration).
type job struct {
	ID   string
	Kind string // "sweep" | "explore"

	sweep   *sweepRequest
	explore *exploreRequest

	mu       sync.Mutex
	state    string
	errMsg   string
	result   []byte
	progress json.RawMessage          // latest progress report
	subs     map[chan []byte]struct{} // SSE subscribers, framed events
	created  time.Time
	started  time.Time
	finished time.Time

	// Telemetry state, present only on sweeps submitted with series
	// options. Entries fill in as runs settle, so a mid-sweep series
	// fetch sees a partial document; seriesRaw is the settled document,
	// rendered once when the sweep completes (or recovered from disk).
	seriesMu      sync.Mutex
	seriesEntries []api.SweepSeriesEntry
	seriesRaw     []byte
}

func newJob(id, kind string) *job {
	return &job{
		ID:      id,
		Kind:    kind,
		state:   jobQueued,
		subs:    make(map[chan []byte]struct{}),
		created: time.Now(),
	}
}

// jobStatus is the wire form of a job's state.
type jobStatus struct {
	JobID    string          `json:"job_id"`
	Kind     string          `json:"kind"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Progress json.RawMessage `json:"progress,omitempty"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
}

func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		JobID:    j.ID,
		Kind:     j.Kind,
		State:    j.state,
		Error:    j.errMsg,
		Progress: j.progress,
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// sseFrame renders one server-sent event.
func sseFrame(event string, data []byte) []byte {
	var b strings.Builder
	b.WriteString("event: ")
	b.WriteString(event)
	b.WriteString("\ndata: ")
	b.Write(data)
	b.WriteString("\n\n")
	return []byte(b.String())
}

// subscribe registers an SSE listener. The returned backlog replays the
// job's latest progress (if any); for a settled job the backlog carries
// the terminal event and the channel comes back closed, so late
// subscribers see the outcome without waiting.
func (j *job) subscribe() (ch chan []byte, backlog [][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch = make(chan []byte, 16)
	if j.progress != nil {
		backlog = append(backlog, sseFrame("progress", j.progress))
	}
	if j.state == jobDone || j.state == jobFailed {
		backlog = append(backlog, j.terminalFrameLocked())
		close(ch)
		return ch, backlog
	}
	j.subs[ch] = struct{}{}
	return ch, backlog
}

func (j *job) unsubscribe(ch chan []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
}

// publishProgress records and broadcasts one progress report. A slow
// subscriber's full buffer drops the event rather than stalling the job:
// progress is a monotone summary, not a log, and the next event
// supersedes the lost one.
func (j *job) publishProgress(data json.RawMessage) {
	frame := sseFrame("progress", data)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = data
	for ch := range j.subs {
		select {
		case ch <- frame:
		default:
		}
	}
}

// publishEvent broadcasts one non-progress SSE frame (e.g. a live
// "epoch" event) to current subscribers. Unlike progress it is not
// retained for replay: epoch events form a stream, not a state
// summary, and a late subscriber reads the series endpoint instead.
func (j *job) publishEvent(event string, data json.RawMessage) {
	frame := sseFrame(event, data)
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- frame:
		default:
		}
	}
}

// initSeries installs one series slot per run of a telemetry-enabled
// sweep, in SweepSpecsByName order. Until a run settles its slot holds
// an empty (but well-formed) series.
func (j *job) initSeries(entries []api.SweepSeriesEntry) {
	j.seriesMu.Lock()
	defer j.seriesMu.Unlock()
	j.seriesEntries = entries
}

// setSeries attaches one settled run's series to its slot.
func (j *job) setSeries(i int, s api.Series) {
	j.seriesMu.Lock()
	defer j.seriesMu.Unlock()
	if i >= 0 && i < len(j.seriesEntries) {
		j.seriesEntries[i].Series = s
	}
}

// settleSeries renders and retains the settled series document.
func (j *job) settleSeries() ([]byte, error) {
	j.seriesMu.Lock()
	defer j.seriesMu.Unlock()
	data, err := api.Encode(api.SweepSeries{
		Schema:       api.SchemaVersion,
		SeriesSchema: api.SeriesSchemaVersion,
		Entries:      j.seriesEntries,
	})
	if err != nil {
		return nil, err
	}
	j.seriesRaw = data
	return data, nil
}

// seriesDoc returns the job's series document: the settled bytes once
// the sweep has completed, or a partial rendering of the runs settled
// so far. ok is false when the job carries no telemetry.
func (j *job) seriesDoc() (data []byte, partial bool, ok bool) {
	j.seriesMu.Lock()
	defer j.seriesMu.Unlock()
	if j.seriesRaw != nil {
		return j.seriesRaw, false, true
	}
	if j.seriesEntries == nil {
		return nil, false, false
	}
	data, err := api.Encode(api.SweepSeries{
		Schema:       api.SchemaVersion,
		SeriesSchema: api.SeriesSchemaVersion,
		Partial:      true,
		Entries:      j.seriesEntries,
	})
	if err != nil {
		return nil, false, false
	}
	return data, true, true
}

// start transitions the job to running.
func (j *job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = jobRunning
	j.started = time.Now()
}

// finish settles the job, broadcasts the terminal event and closes every
// subscriber.
func (j *job) finish(result []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state = jobFailed
		j.errMsg = err.Error()
	} else {
		j.state = jobDone
		j.result = result
	}
	frame := j.terminalFrameLocked()
	for ch := range j.subs {
		select {
		case ch <- frame:
		default:
			// The buffer is full of stale progress frames. Unlike
			// progress, the terminal event is not superseded by anything:
			// evict one queued frame to guarantee it lands before close.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- frame:
			default:
			}
		}
		close(ch)
		delete(j.subs, ch)
	}
}

// terminalFrameLocked renders the final SSE event; j.mu must be held.
func (j *job) terminalFrameLocked() []byte {
	data, _ := json.Marshal(struct {
		State string `json:"state"`
		Error string `json:"error,omitempty"`
	}{State: j.state, Error: j.errMsg})
	return sseFrame("done", data)
}

// jobManager owns the bounded queue, the worker pool and the job index.
// The index is bounded too: settled jobs are retired in finish order
// once more than retain of them accumulate, so a long-lived server does
// not grow memory (or state-directory contents) with every sweep it has
// ever served. A retired job's result usually survives in the result
// cache — resubmitting it creates a job that settles instantly.
type jobManager struct {
	s            *Server
	mu           sync.Mutex
	byID         map[string]*job
	queue        chan *job
	settled      []string // settled job IDs, oldest first
	settledBytes int64    // total result bytes retained by settled jobs
	retain       int
	retainBytes  int64
	closed       bool
	wg           sync.WaitGroup
	running      atomic.Int64
	ctx          context.Context
	cancel       context.CancelFunc
}

func newJobManager(s *Server, depth, workers, retain int, retainBytes int64) *jobManager {
	m := &jobManager{
		s:           s,
		byID:        make(map[string]*job),
		queue:       make(chan *job, depth),
		retain:      retain,
		retainBytes: retainBytes,
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// lookup returns a job by ID.
func (m *jobManager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	return j, ok
}

// submit enqueues a job, deduplicating on its content-addressed ID: a
// resubmission of identical work returns the existing job — queued,
// running or done — without queuing anything new. A failed job is the
// exception: resubmitting it replaces the failure and retries, so a
// transient error is not sticky for the life of the process.
func (m *jobManager) submit(j *job) (*job, error) {
	m.mu.Lock()
	replacingFailed := false
	if exist, ok := m.byID[j.ID]; ok {
		exist.mu.Lock()
		replacingFailed = exist.state == jobFailed
		exist.mu.Unlock()
		if !replacingFailed {
			m.mu.Unlock()
			return exist, nil
		}
	}
	if m.closed || m.s.draining.Load() {
		m.mu.Unlock()
		return nil, errDraining
	}
	select {
	case m.queue <- j:
		// Only a successfully queued replacement displaces a failed
		// job's record — a rejected resubmission must not erase the
		// failure the client may still be inspecting.
		if replacingFailed {
			m.dropSettledLocked(j.ID)
		}
		m.byID[j.ID] = j
		m.mu.Unlock()
	default:
		m.mu.Unlock()
		return nil, errQueueFull
	}
	m.s.persistJobSpec(j)
	return j, nil
}

// adopt registers a recovered job (already settled, loaded from the
// state directory) without queueing it.
func (m *jobManager) adopt(j *job) {
	m.mu.Lock()
	m.byID[j.ID] = j
	m.mu.Unlock()
	m.retire(j)
}

// retire folds a settled job into the bounded history, evicting the
// oldest settled jobs — index entry and persisted state both — beyond
// the count or byte bound. The newest job always survives its own
// retirement, so a just-settled result stays fetchable at least once.
func (m *jobManager) retire(j *job) {
	j.mu.Lock()
	size := int64(len(j.result))
	j.mu.Unlock()
	var evicted []string
	m.mu.Lock()
	// A failed job can be displaced by a retry between finish() and this
	// call; retiring the stale record would enqueue its ID for an
	// eviction that then deletes the live retry's index entry and state.
	if m.byID[j.ID] != j {
		m.mu.Unlock()
		return
	}
	m.settled = append(m.settled, j.ID)
	m.settledBytes += size
	for (len(m.settled) > m.retain || m.settledBytes > m.retainBytes) && len(m.settled) > 1 {
		old := m.settled[0]
		m.settled = m.settled[1:]
		if oj, ok := m.byID[old]; ok {
			oj.mu.Lock()
			m.settledBytes -= int64(len(oj.result))
			oj.mu.Unlock()
			delete(m.byID, old)
		}
		evicted = append(evicted, old)
	}
	m.mu.Unlock()
	for _, id := range evicted {
		m.s.removeJobState(id)
	}
}

// dropSettledLocked removes an ID from the settled history, releasing
// its byte accounting; m.mu held and the ID still indexed in byID.
func (m *jobManager) dropSettledLocked(id string) {
	for i, s := range m.settled {
		if s == id {
			m.settled = append(m.settled[:i], m.settled[i+1:]...)
			if oj, ok := m.byID[id]; ok {
				oj.mu.Lock()
				m.settledBytes -= int64(len(oj.result))
				oj.mu.Unlock()
			}
			return
		}
	}
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.running.Add(1)
		m.s.runJob(m.ctx, j)
		m.running.Add(-1)
		m.retire(j)
	}
}

// drain stops accepting jobs, lets the workers finish everything queued
// and in flight, and returns when the pool is idle. If ctx expires
// first, running jobs are canceled — an exploration flushes its
// checkpoint on cancellation, so a resubmission after restart resumes it
// — and drain waits for the (now unblocked) workers before returning
// the context error.
func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		m.cancel()
		<-idle
		return ctx.Err()
	}
}

// persistedJob is the on-disk form of a submitted job's request, enough
// to resubmit it after a server restart.
type persistedJob struct {
	Kind    string          `json:"kind"`
	Sweep   *sweepRequest   `json:"sweep,omitempty"`
	Explore *exploreRequest `json:"explore,omitempty"`
}

func (s *Server) statePath(prefix, id string) string {
	return filepath.Join(s.opts.StateDir, prefix+"-"+id+".json")
}

// removeJobState deletes a retired job's persisted spec, result and
// checkpoint, so the state directory stays bounded alongside the index.
func (s *Server) removeJobState(id string) {
	if s.opts.StateDir == "" {
		return
	}
	for _, prefix := range []string{"job", "result", "ckpt", "series"} {
		os.Remove(s.statePath(prefix, id))
	}
}

// persistJobSpec records a submitted job's request in the state
// directory so a restarted server can pick the work back up. Best
// effort: persistence failures are logged, not fatal — the job still
// runs, it just will not survive a restart.
func (s *Server) persistJobSpec(j *job) {
	if s.opts.StateDir == "" {
		return
	}
	data, err := json.MarshalIndent(persistedJob{Kind: j.Kind, Sweep: j.sweep, Explore: j.explore}, "", "  ")
	if err == nil {
		err = atomicfile.Write(s.statePath("job", j.ID), data)
	}
	if err != nil {
		s.opts.Log.Warn("serve: persist job spec failed", "job", j.ID, "err", err)
	}
}

// recoverJobs replays the state directory on startup: jobs with a
// persisted result are adopted as settled (and re-seed the result
// cache); incomplete jobs are resubmitted — an exploration that left a
// checkpoint resumes from it rather than starting over.
func (s *Server) recoverJobs() error {
	dir := s.opts.StateDir
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: state dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, "job-"), ".json")
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.opts.Log.Warn("serve: recover job failed", "file", name, "err", err)
			continue
		}
		var spec persistedJob
		if err := json.Unmarshal(data, &spec); err != nil {
			s.opts.Log.Warn("serve: recover job failed", "file", name, "err", err)
			continue
		}
		// A spec whose kind and payload disagree (schema skew, an edited
		// file) must not reach a worker: execSweep/execExplore would
		// dereference a nil request.
		ok := (spec.Kind == "sweep" && spec.Sweep != nil) ||
			(spec.Kind == "explore" && spec.Explore != nil)
		if !ok {
			s.opts.Log.Warn("serve: recovered job spec is malformed", "file", name, "kind", spec.Kind)
			continue
		}
		j := newJob(id, spec.Kind)
		j.sweep, j.explore = spec.Sweep, spec.Explore
		// Adopt a persisted result only if it parses; a corrupt file
		// (results are written atomically, but trust nothing that feeds
		// the cache) falls through to a re-run.
		if result, err := os.ReadFile(s.statePath("result", id)); err == nil && json.Valid(result) {
			j.state = jobDone
			j.result = result
			j.finished = time.Now()
			// A telemetry sweep's series document is adopted alongside its
			// result, so /v1/jobs/{id}/series survives a restart too.
			if ser, serr := os.ReadFile(s.statePath("series", id)); serr == nil && json.Valid(ser) {
				j.seriesRaw = ser
			}
			s.store.Put(id, result)
			s.jobs.adopt(j)
			continue
		}
		if _, err := s.jobs.submit(j); err != nil {
			s.opts.Log.Warn("serve: resubmit recovered job failed", "job", id, "err", err)
		}
	}
	return nil
}
