package exp

import (
	"strings"
	"testing"

	"hybridmem/internal/design"
	"hybridmem/internal/workload"
)

// TestRegistryBackedLists pins that the registry reproduces the engine's
// pre-refactor hard-coded design lists.
func TestRegistryBackedLists(t *testing.T) {
	wantMain := "MPOD CHA LGM TAGLESS DFC HYBRID2"
	if got := strings.Join(MainDesigns, " "); got != wantMain {
		t.Fatalf("MainDesigns = %q, want %q", got, wantMain)
	}
	wantExtra := "CAMEO POM SILC-FM ALLOY FOOTPRINT BANSHEE"
	if got := strings.Join(ExtraDesigns, " "); got != wantExtra {
		t.Fatalf("ExtraDesigns = %q, want %q", got, wantExtra)
	}
}

// TestRegistrySmokeEveryDesignRuns asserts that every registered family
// builds via its example name and completes one short run — the
// registry's executable contract.
func TestRegistrySmokeEveryDesignRuns(t *testing.T) {
	r := NewRunner()
	r.InstrPerCore = 30_000
	wl, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("no workload mcf")
	}
	for _, info := range design.AllInfos() {
		name := info.SampleName()
		res, err := r.ResultErr(wl, name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Cycles == 0 || res.Instructions == 0 {
			t.Errorf("%s: empty result %+v", name, res)
		}
	}
}

// TestMalformedParamsFailAtParse is the satellite fix: names that are
// shaped like designs but carry invalid parameters are parse-time errors
// from ResultErr — nothing is simulated, cached or recovered from.
func TestMalformedParamsFailAtParse(t *testing.T) {
	r := tiny()
	wl := r.Workloads()[0]
	for _, name := range []string{"DFC-0", "IDEAL--3", "H2DSE-0-0-0", "H2ABL-bogus-1", "DFC-100"} {
		_, err := r.ResultErr(wl, name, 1)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "design:") {
			t.Errorf("%s: error %q did not come from the parser", name, err)
		}
	}
	if n := r.MemoStats().Entries; n != 0 {
		t.Fatalf("%d malformed runs were cached", n)
	}
}

// TestRunTraceEmptyTrace is the satellite fix: an empty or
// whitespace/comment-only trace is an error, not a zero-cycle Result.
func TestRunTraceEmptyTrace(t *testing.T) {
	r := tiny()
	for _, text := range []string{"", "   \n \t \n", "# comments only\n\n# more\n"} {
		if _, err := r.RunTrace("t", strings.NewReader(text), "Baseline", 1, 2); err == nil {
			t.Errorf("trace %q accepted", text)
		}
	}
}

// TestRunTraceRejectsMalformedDesign pins that trace replay validates the
// design before reading any trace data.
func TestRunTraceRejectsMalformedDesign(t *testing.T) {
	r := tiny()
	if _, err := r.RunTrace("t", strings.NewReader("0 1 40 R\n"), "DFC-0", 1, 2); err == nil {
		t.Fatal("malformed design accepted by RunTrace")
	}
}
