package telemetry

import (
	"reflect"
	"testing"

	"hybridmem/internal/memtypes"
)

// TestNilSamplerSafe pins the nil-receiver contract on every handle:
// all methods must be callable (and free) through a nil *Sampler.
func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	if s.Enabled() {
		t.Fatal("nil sampler reports enabled")
	}
	if w := s.WindowInstr(); w != 0 {
		t.Fatalf("nil sampler window = %d, want 0", w)
	}
	s.Latency(123)
	s.Flush(1000, 2000, 10, 5, &memtypes.MemStats{Requests: 5})
	if got := s.Series(); got != nil {
		t.Fatalf("nil sampler Series() = %+v, want nil", got)
	}
}

func TestDefaults(t *testing.T) {
	s := New(Options{})
	if s.WindowInstr() != DefaultWindowInstr {
		t.Fatalf("default window = %d, want %d", s.WindowInstr(), DefaultWindowInstr)
	}
	if len(s.ring) != DefaultMaxEpochs {
		t.Fatalf("default ring = %d, want %d", len(s.ring), DefaultMaxEpochs)
	}
}

// feed drives a sampler with synthetic cumulative counters: each call
// advances the run by di instructions, dc cycles, da accesses, dm
// misses and the given MemStats deltas, then flushes.
type feed struct {
	instr, cycle, acc, miss uint64
	mem                     memtypes.MemStats
}

func (f *feed) step(s *Sampler, di, dc, da, dm uint64, mem memtypes.MemStats) {
	f.instr += di
	f.cycle += dc
	f.acc += da
	f.miss += dm
	f.mem.Requests += mem.Requests
	f.mem.ServedNM += mem.ServedNM
	f.mem.ServedFM += mem.ServedFM
	f.mem.NMReadBytes += mem.NMReadBytes
	f.mem.NMWriteBytes += mem.NMWriteBytes
	f.mem.FMReadBytes += mem.FMReadBytes
	f.mem.FMWriteBytes += mem.FMWriteBytes
	f.mem.MetaNMBytes += mem.MetaNMBytes
	f.mem.Migrations += mem.Migrations
	f.mem.Evictions += mem.Evictions
	f.mem.FetchedBytes += mem.FetchedBytes
	f.mem.UsedBytes += mem.UsedBytes
	s.Flush(f.instr, f.cycle, f.acc, f.miss, &f.mem)
}

func TestEpochDeltas(t *testing.T) {
	s := New(Options{WindowInstr: 1000, MaxEpochs: 8})
	var f feed

	s.Latency(100)
	s.Latency(100)
	f.step(s, 1000, 2000, 50, 10, memtypes.MemStats{
		Requests: 10, ServedNM: 8,
		NMReadBytes: 640, NMWriteBytes: 64,
		FMReadBytes: 128, FMWriteBytes: 64,
		MetaNMBytes: 32, Migrations: 2, Evictions: 1,
		FetchedBytes: 1024, UsedBytes: 256,
	})
	// Second window: different shape; no latencies recorded.
	f.step(s, 2000, 2000, 20, 4, memtypes.MemStats{
		Requests: 4, ServedNM: 1,
		FMReadBytes: 256,
	})

	ser := s.Series()
	if ser.EpochsTotal != 2 || len(ser.Epochs) != 2 || ser.EpochsDropped != 0 {
		t.Fatalf("series shape: total=%d dropped=%d len=%d", ser.EpochsTotal, ser.EpochsDropped, len(ser.Epochs))
	}
	e0, e1 := ser.Epochs[0], ser.Epochs[1]
	if e0.Index != 0 || e0.EndInstr != 1000 || e0.EndCycle != 2000 {
		t.Fatalf("epoch0 boundary: %+v", e0)
	}
	if e0.IPC != 0.5 {
		t.Fatalf("epoch0 IPC = %v, want 0.5", e0.IPC)
	}
	if e0.LLCAccesses != 50 || e0.LLCMisses != 10 || e0.MPKI != 10 {
		t.Fatalf("epoch0 llc: %+v", e0)
	}
	if e0.Requests != 10 || e0.NMHitFrac != 0.8 {
		t.Fatalf("epoch0 requests/nmhit: %+v", e0)
	}
	if e0.NMTrafficBytes != 704 || e0.FMTrafficBytes != 192 || e0.MetaNMBytes != 32 {
		t.Fatalf("epoch0 traffic: %+v", e0)
	}
	if e0.Migrations != 2 || e0.Evictions != 1 {
		t.Fatalf("epoch0 moves: %+v", e0)
	}
	if e0.WastedFrac != 0.75 {
		t.Fatalf("epoch0 wasted = %v, want 0.75", e0.WastedFrac)
	}
	if e0.LatCount != 2 || e0.LatMean != 100 || e0.LatP50 != 64 {
		t.Fatalf("epoch0 latency: %+v", e0)
	}

	if e1.Index != 1 || e1.Instr != 2000 || e1.IPC != 1.0 {
		t.Fatalf("epoch1 window: %+v", e1)
	}
	if e1.MPKI != 2 {
		t.Fatalf("epoch1 MPKI = %v, want 2", e1.MPKI)
	}
	if e1.NMHitFrac != 0.25 {
		t.Fatalf("epoch1 nmhit = %v, want 0.25", e1.NMHitFrac)
	}
	// The window histogram must have been reset at the boundary.
	if e1.LatCount != 0 || e1.LatMean != 0 || e1.LatP50 != 0 {
		t.Fatalf("epoch1 latency not reset: %+v", e1)
	}
}

// TestWastedFracWindowClamp: used-bytes of lines fetched in an earlier
// window accrue later, so a window's used delta can exceed its fetched
// delta; the fraction must clamp to 0 instead of wrapping.
func TestWastedFracWindowClamp(t *testing.T) {
	s := New(Options{WindowInstr: 100, MaxEpochs: 4})
	var f feed
	f.step(s, 100, 100, 0, 0, memtypes.MemStats{FetchedBytes: 1024, UsedBytes: 64})
	f.step(s, 100, 100, 0, 0, memtypes.MemStats{FetchedBytes: 64, UsedBytes: 512})
	ser := s.Series()
	if got := ser.Epochs[1].WastedFrac; got != 0 {
		t.Fatalf("clamped wasted frac = %v, want 0", got)
	}
}

func TestFlushIdempotentAtBoundary(t *testing.T) {
	s := New(Options{WindowInstr: 100, MaxEpochs: 4})
	var f feed
	f.step(s, 100, 100, 1, 1, memtypes.MemStats{Requests: 1})
	// A second flush with no new instructions (run ended exactly on a
	// boundary) must not emit an empty epoch.
	s.Flush(f.instr, f.cycle, f.acc, f.miss, &f.mem)
	if ser := s.Series(); ser.EpochsTotal != 1 {
		t.Fatalf("epochs after idempotent flush = %d, want 1", ser.EpochsTotal)
	}
}

func TestRingDropsOldest(t *testing.T) {
	s := New(Options{WindowInstr: 10, MaxEpochs: 4})
	var f feed
	for i := 0; i < 10; i++ {
		f.step(s, 10, 10, 1, 0, memtypes.MemStats{Requests: 1})
	}
	ser := s.Series()
	if ser.EpochsTotal != 10 || ser.EpochsDropped != 6 || len(ser.Epochs) != 4 {
		t.Fatalf("ring bookkeeping: %+v", ser)
	}
	for i, e := range ser.Epochs {
		if e.Index != 6+i {
			t.Fatalf("retained epoch %d has index %d, want %d (oldest-first order)", i, e.Index, 6+i)
		}
	}
}

func TestOnEpochCallback(t *testing.T) {
	var got []int
	s := New(Options{WindowInstr: 10, MaxEpochs: 4, OnEpoch: func(e Epoch) { got = append(got, e.Index) }})
	var f feed
	for i := 0; i < 3; i++ {
		f.step(s, 10, 10, 0, 0, memtypes.MemStats{})
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("OnEpoch indices = %v", got)
	}
}

// TestSeriesDeterministic: the same input stream always yields a
// deeply equal series, and Series() itself is repeatable.
func TestSeriesDeterministic(t *testing.T) {
	build := func() *Series {
		s := New(Options{WindowInstr: 50, MaxEpochs: 16})
		var f feed
		for i := 0; i < 12; i++ {
			s.Latency(uint64(10 + i*7))
			f.step(s, 50, uint64(40+i%3*20), uint64(i), uint64(i/2), memtypes.MemStats{
				Requests: 5, ServedNM: uint64(i % 5), FMReadBytes: 64,
				FetchedBytes: 128, UsedBytes: 64,
			})
		}
		return s.Series()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("series not deterministic:\n%+v\n%+v", a, b)
	}
	s := New(Options{WindowInstr: 50, MaxEpochs: 16})
	var f feed
	f.step(s, 50, 50, 1, 1, memtypes.MemStats{Requests: 1})
	if !reflect.DeepEqual(s.Series(), s.Series()) {
		t.Fatal("repeated Series() calls differ")
	}
}

func TestSegmentEmptyAndFlat(t *testing.T) {
	if got := Segment(nil); len(got) != 0 {
		t.Fatalf("Segment(nil) = %v", got)
	}
	flat := make([]Epoch, 20)
	for i := range flat {
		flat[i] = Epoch{Index: i, IPC: 1.5, MPKI: 3}
	}
	phases := Segment(flat)
	if len(phases) != 1 {
		t.Fatalf("flat series phases = %d, want 1", len(phases))
	}
	p := phases[0]
	if p.StartEpoch != 0 || p.EndEpoch != 19 || p.Epochs != 20 {
		t.Fatalf("flat phase bounds: %+v", p)
	}
	if p.MeanIPC != 1.5 || p.MeanMPKI != 3 {
		t.Fatalf("flat phase means: %+v", p)
	}
}

func TestSegmentFindsChangePoint(t *testing.T) {
	var epochs []Epoch
	for i := 0; i < 12; i++ {
		epochs = append(epochs, Epoch{Index: i, IPC: 2.0, MPKI: 1, NMHitFrac: 0.9})
	}
	for i := 12; i < 24; i++ {
		epochs = append(epochs, Epoch{Index: i, IPC: 0.5, MPKI: 8, NMHitFrac: 0.2})
	}
	phases := Segment(epochs)
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2: %+v", len(phases), phases)
	}
	if phases[0].EndEpoch != 11 || phases[1].StartEpoch != 12 {
		t.Fatalf("split point wrong: %+v", phases)
	}
	if phases[0].MeanIPC != 2.0 || phases[1].MeanIPC != 0.5 {
		t.Fatalf("phase means wrong: %+v", phases)
	}
	if d := phases[0].MeanNMHitFrac - 0.9; d > 1e-9 || d < -1e-9 || phases[1].MeanMPKI != 8 {
		t.Fatalf("phase annotations wrong: %+v", phases)
	}
}

// TestSegmentDeterministic pins that segmentation is a pure function.
func TestSegmentDeterministic(t *testing.T) {
	var epochs []Epoch
	for i := 0; i < 40; i++ {
		ipc := 1.0 + float64(i%7)*0.1
		if i >= 20 {
			ipc += 1.0
		}
		epochs = append(epochs, Epoch{Index: i, IPC: ipc})
	}
	a, b := Segment(epochs), Segment(epochs)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("segmentation not deterministic:\n%v\n%v", a, b)
	}
}
