package flat

import (
	"testing"

	"hybridmem/internal/memsys"
	"hybridmem/internal/memtypes"
)

func TestFMOnlyServesEverythingFromFM(t *testing.T) {
	f := NewFMOnly(memsys.New(memsys.DDR4Config()))
	var now memtypes.Tick
	for i := 0; i < 100; i++ {
		now = f.Access(now, memtypes.Addr(i*64), i%3 == 0)
	}
	s := f.Stats()
	if s.ServedFM != 100 || s.ServedNM != 0 {
		t.Fatalf("served FM/NM = %d/%d, want 100/0", s.ServedFM, s.ServedNM)
	}
	if s.FMTraffic() != 100*64 {
		t.Fatalf("FM traffic %d, want %d", s.FMTraffic(), 100*64)
	}
	if s.NMTraffic() != 0 {
		t.Fatal("baseline produced NM traffic")
	}
}

func TestNMOnlyFasterThanFMOnly(t *testing.T) {
	fm := NewFMOnly(memsys.New(memsys.DDR4Config()))
	nm := NewNMOnly(memsys.New(memsys.HBM2Config()))
	var tFM, tNM memtypes.Tick
	for i := 0; i < 1000; i++ {
		a := memtypes.Addr(i * 64)
		tFM = fm.Access(tFM, a, false)
		tNM = nm.Access(tNM, a, false)
	}
	if tNM >= tFM {
		t.Fatalf("NM-only (%d) not faster than FM-only (%d)", tNM, tFM)
	}
}
