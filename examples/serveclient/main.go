// Serveclient walks through the simulation service end to end, fully
// self-contained: it boots hybridmem.Serve in-process on a random port,
// then drives it exactly like a remote client would — a synchronous run
// served twice (the second from the content-addressed cache), an async
// sweep followed over server-sent events, a streamed trace upload, and
// the metrics that account for all of it.
//
//	go run ./examples/serveclient
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"hybridmem"
)

// serve boots the service on a random local port, reporting the bound
// address on listening, and blocks until ctx cancels and the drain
// completes.
func serve(ctx context.Context, listening chan<- string) error {
	return hybridmem.Serve(ctx, hybridmem.ServeOptions{
		Addr:     "127.0.0.1:0",
		OnListen: func(addr string) { listening <- addr },
	})
}

const runBody = `{
  "design": "HYBRID2",
  "workload": "lbm",
  "config": {"scale": 16, "nm_ratio16": 1, "instr_per_core": 200000, "seed": 1}
}`

const sweepBody = `{
  "designs": ["Baseline", "HYBRID2", "MPOD"],
  "workloads": ["lbm", "mcf"],
  "config": {"scale": 16, "nm_ratio16": 1, "instr_per_core": 100000, "seed": 1}
}`

func main() {
	log.SetFlags(0)

	// Boot the service in-process; a real deployment runs cmd/hybridmemd.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	listening := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, listening)
	}()
	var base string
	select {
	case addr := <-listening:
		base = "http://" + addr
	case err := <-serveErr:
		log.Fatal(err)
	}
	fmt.Printf("server up at %s\n\n", base)

	// 1. A synchronous run. The second request is byte-identical and
	// never touches the simulator: same fingerprint, cache hit.
	fmt.Println("POST /v1/run (cold):")
	first := timed(func() []byte { return post(base+"/v1/run", strings.NewReader(runBody)) })
	fmt.Println("POST /v1/run (cached, same request):")
	second := timed(func() []byte { return post(base+"/v1/run", strings.NewReader(runBody)) })
	if !bytes.Equal(first, second) {
		log.Fatal("cached response differs from cold response")
	}
	var run struct {
		Result struct {
			Cycles       uint64  `json:"cycles"`
			IPC          float64 `json:"ipc"`
			ServedNMFrac float64 `json:"served_nm_frac"`
		} `json:"result"`
	}
	json.Unmarshal(first, &run)
	fmt.Printf("  -> cycles %d, IPC %.3f, served-NM %.0f%%\n\n",
		run.Result.Cycles, run.Result.IPC, run.Result.ServedNMFrac*100)

	// 2. An async sweep: submit, watch progress over SSE, fetch the
	// result document once the job settles.
	fmt.Println("POST /v1/sweep (async job):")
	var sub struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}
	json.Unmarshal(post(base+"/v1/sweep", strings.NewReader(sweepBody)), &sub)
	fmt.Printf("  job %s %s; streaming /v1/jobs/%s/events\n", sub.JobID, sub.State, sub.JobID)
	streamEvents(base + "/v1/jobs/" + sub.JobID + "/events")
	var sweep struct {
		Results []struct {
			Workload string `json:"workload"`
			Design   string `json:"design"`
			Cycles   uint64 `json:"cycles"`
		} `json:"results"`
	}
	json.Unmarshal(get(base+"/v1/jobs/"+sub.JobID+"/result"), &sweep)
	for _, r := range sweep.Results {
		fmt.Printf("  %-8s %-8s %12d cycles\n", r.Design, r.Workload, r.Cycles)
	}
	fmt.Println()

	// 3. Trace upload: the request body is the trace itself, streamed —
	// the server never buffers it, so this could be gigabytes.
	fmt.Println("POST /v1/replay (streamed trace body):")
	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		w := bufio.NewWriter(pw)
		defer w.Flush()
		for i := 0; i < 400_000; i++ {
			op := "R"
			if (i/8)%16 == 0 {
				op = "W"
			}
			fmt.Fprintf(w, "%d 3 %x %s\n", i%8, uint64(i)*64%(1<<28), op)
		}
	}()
	var replay struct {
		Result struct {
			Cycles   uint64 `json:"cycles"`
			Requests uint64 `json:"requests"`
		} `json:"result"`
	}
	json.Unmarshal(post(base+"/v1/replay?design=HYBRID2&name=synthetic&mlp=2", pr), &replay)
	fmt.Printf("  -> replayed %d requests in %d cycles\n\n", replay.Result.Requests, replay.Result.Cycles)

	// 4. The metrics that accounted for all of the above.
	fmt.Println("GET /metrics (excerpt):")
	for _, line := range strings.Split(string(get(base+"/metrics")), "\n") {
		if strings.HasPrefix(line, "hybridmem_cache_") ||
			strings.HasPrefix(line, "hybridmem_singleflight_") ||
			strings.HasPrefix(line, "hybridmem_jobs_total") {
			fmt.Println("  " + line)
		}
	}

	// Shut the service down gracefully and wait for the clean drain.
	stop()
	if err := <-serveErr; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver drained cleanly")
}

func post(url string, body io.Reader) []byte {
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s: %s", url, resp.Status, data)
	}
	return data
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, data)
	}
	return data
}

// timed runs fn and reports its wall-clock time — the cache hit's
// microseconds against the cold run's milliseconds.
func timed(fn func() []byte) []byte {
	start := time.Now()
	out := fn()
	fmt.Printf("  served in %v\n", time.Since(start).Round(10*time.Microsecond))
	return out
}

// streamEvents follows a job's SSE stream until its done event.
func streamEvents(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Printf("    %-8s %s\n", event, strings.TrimPrefix(line, "data: "))
		}
	}
}
